package client

import (
	"reflect"
	"testing"

	"mobicache/internal/cache"
	"mobicache/internal/churn"
)

// TestResetStatsZeroesEveryCounter reflect-guards the warmup reset: every
// exported statistics field of Client must return to its zero value on an
// idle client. A new counter that resetStats misses would silently leak
// warmup traffic into the measured interval.
func TestResetStatsZeroesEveryCounter(t *testing.T) {
	r := newRig(t, "ts", nil)
	v := reflect.ValueOf(r.cl).Elem()
	ty := v.Type()
	for i := 0; i < ty.NumField(); i++ {
		f := ty.Field(i)
		if !f.IsExported() {
			continue
		}
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Int64:
			fv.SetInt(7)
		case reflect.Float64:
			fv.SetFloat(7.5)
		case reflect.Struct:
			// stats.Tally: poke its exported numeric fields directly.
			for j := 0; j < fv.NumField(); j++ {
				if sf := fv.Field(j); sf.CanSet() && sf.Kind() == reflect.Float64 {
					sf.SetFloat(7.5)
				} else if sf.CanSet() && sf.Kind() == reflect.Int64 {
					sf.SetInt(7)
				}
			}
		default:
			t.Fatalf("unhandled exported field %s of kind %v; extend the reset guard", f.Name, fv.Kind())
		}
	}
	r.cl.ResetStats()
	for i := 0; i < ty.NumField(); i++ {
		f := ty.Field(i)
		if !f.IsExported() {
			continue
		}
		if !v.Field(i).IsZero() {
			t.Errorf("ResetStats left %s = %v on an idle client", f.Name, v.Field(i))
		}
	}
}

func TestStormDownBlocksDeliveryAndCounts(t *testing.T) {
	r := newRig(t, "ts", nil)
	r.cl.Start()
	r.k.Run(1)
	r.cl.StormDown()
	r.cl.StormDown() // idempotent
	if r.cl.StormDisconnects != 1 || r.cl.Disconnections != 1 {
		t.Fatalf("storm disconnects %d / total %d after an idempotent double StormDown, want 1 / 1",
			r.cl.StormDisconnects, r.cl.Disconnections)
	}
	if r.cl.Connected() {
		t.Fatal("client connected while storm-downed")
	}
	heard := r.cl.ReportsHeard
	r.broadcast(100)
	if r.cl.ReportsHeard != heard {
		t.Fatal("storm-downed client heard a report")
	}
	r.cl.DeliverItem(1, 1, 100, 100)
	if r.cl.OfflineDrops != 1 {
		t.Fatalf("offline item delivery recorded %d drops, want 1", r.cl.OfflineDrops)
	}
	r.cl.StormUp(false)
	r.cl.StormUp(false) // idempotent
	if !r.cl.Connected() {
		t.Fatal("client still down after StormUp")
	}
	if r.cl.StormDisconnects != 1 {
		t.Fatalf("storm disconnects %d after heal, want 1", r.cl.StormDisconnects)
	}
}

func TestRestartWarmRestoresProtocolState(t *testing.T) {
	r := newRig(t, "ts", nil)
	r.cl.Start()
	r.k.Run(1)
	r.cl.CrashDown()
	if !r.cl.CrashedDown() || r.cl.Crashes != 1 {
		t.Fatalf("CrashDown: crashed=%v crashes=%d", r.cl.CrashedDown(), r.cl.Crashes)
	}
	snap := &churn.Snapshot{
		Epoch: 2, PersistAt: 50, Tlb: 42,
		Entries: []cache.Entry{{ID: 9, TS: 40, Version: 3}},
	}
	r.cl.Restart(snap, false)
	if r.cl.CrashedDown() || !r.cl.Connected() {
		t.Fatal("client not back up after warm restart")
	}
	if r.cl.RestartsWarm != 1 || r.cl.RestartsCold != 0 {
		t.Fatalf("restarts warm/cold = %d/%d, want 1/0", r.cl.RestartsWarm, r.cl.RestartsCold)
	}
	st := r.cl.st
	if st.Tlb != 42 || st.Epoch != 2 || st.Salvages != 1 {
		t.Fatalf("restored Tlb=%v Epoch=%d Salvages=%d, want 42 / 2 / 1", st.Tlb, st.Epoch, st.Salvages)
	}
	if _, ok := st.Cache.Peek(9); !ok {
		t.Fatal("restored cache is missing the snapshot entry")
	}
}

func TestRestartColdDropsAndCountsRejection(t *testing.T) {
	r := newRig(t, "ts", nil)
	r.cl.Start()
	r.k.Run(1)
	r.cl.st.Cache.Put(5, 10, 1)
	r.cl.st.Tlb = 30
	r.cl.CrashDown()
	r.cl.Restart(nil, true)
	if r.cl.RestartsCold != 1 || r.cl.SnapshotRejects != 1 {
		t.Fatalf("cold restarts %d, rejects %d, want 1 / 1", r.cl.RestartsCold, r.cl.SnapshotRejects)
	}
	st := r.cl.st
	if st.Cache.Len() != 0 || st.Tlb != 0 || st.Epoch != 0 || st.Drops != 1 {
		t.Fatalf("cold restart left len=%d Tlb=%v Epoch=%d Drops=%d", st.Cache.Len(), st.Tlb, st.Epoch, st.Drops)
	}
}

func TestRestartWithoutCrashPanics(t *testing.T) {
	r := newRig(t, "ts", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Restart on a live client did not panic")
		}
	}()
	r.cl.Restart(nil, false)
}

// TestCrashCarriesOverResetStats pins the warmup carry: a client crashed
// across the warmup boundary keeps one counted crash so the identity
// Crashes == RestartsWarm + RestartsCold + CrashedDown holds over the
// measured interval.
func TestCrashCarriesOverResetStats(t *testing.T) {
	r := newRig(t, "ts", nil)
	r.cl.Start()
	r.k.Run(1)
	r.cl.CrashDown()
	r.cl.ResetStats()
	if r.cl.Crashes != 1 {
		t.Fatalf("warmup reset forgot the in-progress crash: Crashes=%d, want 1", r.cl.Crashes)
	}
	r.cl.Restart(nil, false)
	if r.cl.Crashes != r.cl.RestartsWarm+r.cl.RestartsCold {
		t.Fatalf("post-restart identity broken: crashes=%d warm=%d cold=%d",
			r.cl.Crashes, r.cl.RestartsWarm, r.cl.RestartsCold)
	}
}
