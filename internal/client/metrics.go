package client

import "mobicache/internal/metrics"

// Metrics groups the timeline instruments the mobile clients drive. One
// instance is shared by every client in a cell (the engine wires it from
// the run's metrics registry); all hook methods are nil-safe no-ops, so
// client code calls them unconditionally, exactly like trace.Tracer.
type Metrics struct {
	// Queries counts completed queries; Resp observes their response
	// times for per-interval percentiles.
	Queries *metrics.Counter
	Resp    *metrics.Histogram
	// Retries counts uplink exchange timeouts; ReportsLost and
	// ReportsCorrupted count reports destroyed by the downlink fault
	// model; EpochDegrades counts recovery-marker-forced cache drops.
	Retries          *metrics.Counter
	ReportsLost      *metrics.Counter
	ReportsCorrupted *metrics.Counter
	EpochDegrades    *metrics.Counter
	// Disconnects counts power-downs; Salvages and Drops the cache
	// outcomes of the invalidation protocol.
	Disconnects *metrics.Counter
	Salvages    *metrics.Counter
	Drops       *metrics.Counter
	// DeadlineMisses counts queries abandoned at their deadline;
	// QueriesShed counts queries abandoned immediately because the
	// bounded uplink tail-dropped their only fetch request.
	DeadlineMisses *metrics.Counter
	QueriesShed    *metrics.Counter
	// Sequence-fence verdicts (armed only under the adversarial-delivery
	// layer): gaps detected, duplicates dropped, reorders dropped.
	IRGaps       *metrics.Counter
	IRDuplicates *metrics.Counter
	IRReorders   *metrics.Counter
	// AoI observes each answered item's age of information (wired only
	// when span/AoI observability is enabled).
	AoI *metrics.Histogram
	// Population-churn transitions (armed only under the churn layer):
	// storm-forced disconnections, process crashes, warm and cold
	// restarts, and verified snapshot rejections.
	StormDisconnects *metrics.Counter
	ClientCrashes    *metrics.Counter
	RestartsWarm     *metrics.Counter
	RestartsCold     *metrics.Counter
	SnapshotRejects  *metrics.Counter
}

func (m *Metrics) aoi(age float64) {
	if m == nil {
		return
	}
	m.AoI.Observe(age)
}

func (m *Metrics) deadlineMiss() {
	if m == nil {
		return
	}
	m.DeadlineMisses.Inc()
}

func (m *Metrics) queryShed() {
	if m == nil {
		return
	}
	m.QueriesShed.Inc()
}

func (m *Metrics) queryDone(resp float64) {
	if m == nil {
		return
	}
	m.Queries.Inc()
	m.Resp.Observe(resp)
}

func (m *Metrics) retry() {
	if m == nil {
		return
	}
	m.Retries.Inc()
}

func (m *Metrics) reportLost() {
	if m == nil {
		return
	}
	m.ReportsLost.Inc()
}

func (m *Metrics) reportCorrupted() {
	if m == nil {
		return
	}
	m.ReportsCorrupted.Inc()
}

func (m *Metrics) epochDegrade() {
	if m == nil {
		return
	}
	m.EpochDegrades.Inc()
}

func (m *Metrics) disconnected() {
	if m == nil {
		return
	}
	m.Disconnects.Inc()
}

func (m *Metrics) salvage() {
	if m == nil {
		return
	}
	m.Salvages.Inc()
}

func (m *Metrics) dropAll() {
	if m == nil {
		return
	}
	m.Drops.Inc()
}

func (m *Metrics) irGap() {
	if m == nil {
		return
	}
	m.IRGaps.Inc()
}

func (m *Metrics) irDuplicate() {
	if m == nil {
		return
	}
	m.IRDuplicates.Inc()
}

func (m *Metrics) irReorder() {
	if m == nil {
		return
	}
	m.IRReorders.Inc()
}

func (m *Metrics) stormDisconnect() {
	if m == nil {
		return
	}
	m.StormDisconnects.Inc()
}

func (m *Metrics) clientCrash() {
	if m == nil {
		return
	}
	m.ClientCrashes.Inc()
}

func (m *Metrics) restartWarm() {
	if m == nil {
		return
	}
	m.RestartsWarm.Inc()
}

func (m *Metrics) restartCold() {
	if m == nil {
		return
	}
	m.RestartsCold.Inc()
}

func (m *Metrics) snapshotReject() {
	if m == nil {
		return
	}
	m.SnapshotRejects.Inc()
}
