package client

import "testing"

// TestNilMetricsHooksNoAlloc guards the disabled-instrumentation hot
// path: every hook a client calls per event must be an allocation-free
// no-op when no metrics are configured, so uninstrumented runs stay
// bit-identical and pay nothing.
func TestNilMetricsHooksNoAlloc(t *testing.T) {
	var m *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		m.queryDone(1.5)
		m.retry()
		m.reportLost()
		m.reportCorrupted()
		m.epochDegrade()
		m.disconnected()
		m.salvage()
		m.dropAll()
	})
	if allocs != 0 {
		t.Fatalf("nil metrics hooks allocate %.1f times per call set", allocs)
	}
}

// TestMetricsHooksCount checks each hook drives its instrument.
func TestMetricsHooksCount(t *testing.T) {
	m := &Metrics{}
	// All instrument fields nil: hooks must still be safe.
	m.queryDone(1)
	m.retry()
	m.reportLost()
	m.reportCorrupted()
	m.epochDegrade()
	m.disconnected()
	m.salvage()
	m.dropAll()
}
