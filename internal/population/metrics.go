package population

// Timeline-metrics wrappers. The shared client.Metrics instance exposes
// its instruments as exported fields but its convenience hooks are
// unexported, so the population carries its own: each guards the nil
// registry case and then drives the same instrument the proc client
// would, keeping timeline CSVs identical between the two paths. The
// instrument methods themselves are nil-receiver-safe, so only the
// Metrics pointer needs guarding.

func (p *Population) mQueryDone(resp float64) {
	if m := p.cfg.Metrics; m != nil {
		m.Queries.Inc()
		m.Resp.Observe(resp)
	}
}

func (p *Population) mDeadlineMiss() {
	if m := p.cfg.Metrics; m != nil {
		m.DeadlineMisses.Inc()
	}
}

func (p *Population) mQueryShed() {
	if m := p.cfg.Metrics; m != nil {
		m.QueriesShed.Inc()
	}
}

func (p *Population) mRetry() {
	if m := p.cfg.Metrics; m != nil {
		m.Retries.Inc()
	}
}

func (p *Population) mReportLost() {
	if m := p.cfg.Metrics; m != nil {
		m.ReportsLost.Inc()
	}
}

func (p *Population) mReportCorrupted() {
	if m := p.cfg.Metrics; m != nil {
		m.ReportsCorrupted.Inc()
	}
}

func (p *Population) mEpochDegrade() {
	if m := p.cfg.Metrics; m != nil {
		m.EpochDegrades.Inc()
	}
}

func (p *Population) mDisconnected() {
	if m := p.cfg.Metrics; m != nil {
		m.Disconnects.Inc()
	}
}

func (p *Population) mSalvage() {
	if m := p.cfg.Metrics; m != nil {
		m.Salvages.Inc()
	}
}

func (p *Population) mDropAll() {
	if m := p.cfg.Metrics; m != nil {
		m.Drops.Inc()
	}
}

func (p *Population) mIRGap() {
	if m := p.cfg.Metrics; m != nil {
		m.IRGaps.Inc()
	}
}

func (p *Population) mIRDuplicate() {
	if m := p.cfg.Metrics; m != nil {
		m.IRDuplicates.Inc()
	}
}

func (p *Population) mIRReorder() {
	if m := p.cfg.Metrics; m != nil {
		m.IRReorders.Inc()
	}
}

func (p *Population) mAoI(age float64) {
	if m := p.cfg.Metrics; m != nil {
		m.AoI.Observe(age)
	}
}

func (p *Population) mStormDisconnect() {
	if m := p.cfg.Metrics; m != nil {
		m.StormDisconnects.Inc()
	}
}

func (p *Population) mClientCrash() {
	if m := p.cfg.Metrics; m != nil {
		m.ClientCrashes.Inc()
	}
}

func (p *Population) mRestartWarm() {
	if m := p.cfg.Metrics; m != nil {
		m.RestartsWarm.Inc()
	}
}

func (p *Population) mRestartCold() {
	if m := p.cfg.Metrics; m != nil {
		m.RestartsCold.Inc()
	}
}

func (p *Population) mSnapshotReject() {
	if m := p.cfg.Metrics; m != nil {
		m.SnapshotRejects.Inc()
	}
}
