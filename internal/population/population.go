package population

import (
	"math"

	"mobicache/internal/bitio"
	"mobicache/internal/client"
	"mobicache/internal/core"
	"mobicache/internal/delivery"
	"mobicache/internal/faults"
	"mobicache/internal/netsim"
	"mobicache/internal/report"
	"mobicache/internal/rng"
	"mobicache/internal/sim"
	"mobicache/internal/stats"
	"mobicache/internal/trace"
	"mobicache/internal/workload"
)

// Config carries the population-wide client parameters — the aggregate
// counterpart of client.Config, minus the per-client fields (ID, RNG
// stream, clock) the population derives itself. Field semantics are
// identical to client.Config; see that type for the full contracts.
type Config struct {
	// Clients is the population size; client ids are 0..Clients-1, their
	// index in every flat slice.
	Clients int
	// Side is the scheme's client half, shared by the whole population.
	Side core.ClientSide
	// Params are the shared protocol constants.
	Params core.Params
	// CacheCapacity is the per-client buffer pool size in items.
	CacheCapacity int
	// QueryAccess picks queried items; QueryItems their count.
	QueryAccess workload.Access
	QueryItems  rng.IntDist
	// MeanThink, ProbDisc, MeanDisc and DiscPerInterval model the
	// inter-query gap exactly as in client.Config.
	MeanThink       float64
	ProbDisc        float64
	MeanDisc        float64
	DiscPerInterval bool
	// FetchRequestBits is the uplink cost of a data request.
	FetchRequestBits float64
	// ConsistencyHook, RespHist, AoIHist, Tracer and Metrics are the
	// engine's shared observability taps (all optional).
	ConsistencyHook func(clientID, itemID, version int32, tlb float64)
	RespHist        *stats.Histogram
	AoIHist         *stats.Histogram
	Tracer          *trace.Tracer
	Metrics         *client.Metrics
	// ReportLossProb, DownLoss and Retry configure the fault layer;
	// QueryDeadline the overload layer; FenceSeq and SkewEpsilon the
	// delivery layer's sequence fence. All exactly as in client.Config.
	ReportLossProb float64
	DownLoss       faults.GEParams
	Retry          faults.RetryPolicy
	QueryDeadline  float64
	FenceSeq       bool
	SkewEpsilon    float64
}

// Lifecycle continuations: where a client's state machine resumes when
// its next wake event fires. Each value is one suspension point of the
// process client's run/gap/disconnect/answer call tree (see
// internal/client); the transliteration is line-for-line so the two
// populations schedule identical kernel events.
const (
	pcGapStart         uint8 = iota // top of the run loop: draw the inter-query gap
	pcAfterGap                      // gap over: wait online, then issue the next query
	pcIntervalLoop                  // per-interval think model: top of the boundary loop
	pcIntervalBoundary              // woke at a broadcast boundary: disconnection coin
	pcDiscWake                      // disconnection nap over: wait online, reconnect
	pcValidated                     // answer: waiting for Tlb to pass the query instant
	pcFetchDone                     // answer: waiting for the fetch generation to drain
)

// Park targets: which signal (in the process client's terms) the client
// is waiting on. A client waits on at most one of its own signals at a
// time, so the proc path's waiter lists degenerate to one enum per
// client; a broadcast on signal s wakes client i exactly when
// parked[i] == s, scheduling the same zero-delay event Signal.Broadcast
// would.
const (
	parkNone      uint8 = iota
	parkValidated       // client.validated: a report validated the cache
	parkFetch           // client.fetchSig: the fetch generation drained
	parkOnline          // client.onlineSig: the forced-offline hold cleared
)

// Counters are one client's measurement tallies — the aggregate layout
// of the exported counter fields of client.Client, one struct per client
// in a flat slice. TestPopulationResetStatsZeroesEveryCounter walks this
// struct by reflection so a counter added here without warmup-reset
// handling fails the build's test tier.
type Counters struct {
	QueriesIssued        int64
	QueriesAnswered      int64
	QueriesTimedOut      int64
	QueriesShed          int64
	BusyHeard            int64
	ItemsRequested       int64
	ItemsFromCache       int64
	RespTime             stats.Tally
	Disconnections       int64
	SoloDisconnects      int64
	StormDisconnects     int64
	Crashes              int64
	RestartsWarm         int64
	RestartsCold         int64
	SnapshotRejects      int64
	OfflineDrops         int64
	DisconnectedFor      float64
	ReportsHeard         int64
	ReportsLost          int64
	ReportsCorrupted     int64
	Retries              int64
	EpochDegrades        int64
	IRGaps               int64
	IRDuplicates         int64
	IRReorders           int64
	SkewDegrades         int64
	ValidationUplinkBits float64
	ValidationUplinkMsgs int64
	FetchUplinkBits      float64
	StaleValidityDropped int64
	AoISamples           int64
	AoISum               float64
}

// Population is the aggregate client population: every per-client field
// of client.Client turned into a flat slice indexed by client id, caches
// packed as versioned bitmaps over the item space, and the process
// lifecycle replaced by the continuation machine in step. One broadcast
// tick wakes the whole cell as a batch: the server's fan-out calls each
// handle's DeliverReport inside the single downlink-completion event, so
// report application for a million clients is one cache-friendly sweep
// over the arrays with no goroutine switches at all.
type Population struct {
	k      *sim.Kernel
	up     *netsim.Channel
	server client.ServerAPI
	cfg    Config

	states  []core.ClientState
	caches  []BitmapCache
	srcs    []rng.Source
	handles []Handle
	counts  []Counters

	// Lifecycle machine.
	phase   []uint8
	parked  []uint8
	retDisc []uint8 // continuation a finished disconnect returns to

	connected    []bool
	offlineStorm []bool
	offlineCrash []bool
	queryOpen    []bool
	expired      []bool

	remaining []float64 // per-interval think model: time left to think
	tq        []float64 // open query's arrival instant

	pending   []int32
	ctrlTries []int32
	fetchSeq  []int64
	deadline  []sim.Handle

	clocks []delivery.Clock
	ge     []*faults.GE

	queryIDs  [][]int32
	missIDs   [][]int32
	fetchIDs  [][]int32
	fetchWant []map[int32]bool

	// Cached per-client closures: the wake (the analog of Proc.wake —
	// every Hold and broadcast schedules it) and the query-deadline
	// event, both built once at construction so the steady state
	// allocates neither.
	wakes       []func()
	deadlineFns []func()
}

// New builds the population: states, caches (three shared arenas), RNG
// substreams and cached closures. Client i's stream is root.Split(1000+i)
// — the same per-client substream contract the process engine uses, and
// rng.Source.Split is non-mutating, so construction consumes no
// randomness and the substreams are a pure function of the root seed.
// Call SetClock (optional), then Attach the handles and StartClient each
// client in id order, mirroring the process path's construction loop.
func New(k *sim.Kernel, up *netsim.Channel, server client.ServerAPI, cfg Config, root *rng.Source) *Population {
	n := cfg.Clients
	p := &Population{
		k: k, up: up, server: server, cfg: cfg,
		states:       make([]core.ClientState, n),
		caches:       make([]BitmapCache, n),
		srcs:         make([]rng.Source, n),
		handles:      make([]Handle, n),
		counts:       make([]Counters, n),
		phase:        make([]uint8, n),
		parked:       make([]uint8, n),
		retDisc:      make([]uint8, n),
		connected:    make([]bool, n),
		offlineStorm: make([]bool, n),
		offlineCrash: make([]bool, n),
		queryOpen:    make([]bool, n),
		expired:      make([]bool, n),
		remaining:    make([]float64, n),
		tq:           make([]float64, n),
		pending:      make([]int32, n),
		ctrlTries:    make([]int32, n),
		fetchSeq:     make([]int64, n),
		deadline:     make([]sim.Handle, n),
		clocks:       make([]delivery.Clock, n),
		ge:           make([]*faults.GE, n),
		queryIDs:     make([][]int32, n),
		missIDs:      make([][]int32, n),
		fetchIDs:     make([][]int32, n),
		fetchWant:    make([]map[int32]bool, n),
		wakes:        make([]func(), n),
		deadlineFns:  make([]func(), n),
	}
	// One loss path, exactly as in client.New: the legacy Bernoulli knob
	// is the degenerate single-state Gilbert–Elliott chain.
	dl := cfg.DownLoss
	if !dl.Enabled() {
		dl = faults.Bernoulli(cfg.ReportLossProb)
	}
	// The three cache arenas: presence bitmaps, slots, free stacks. Every
	// client's cache is a view; a million caches cost three allocations.
	words := BitmapWords(cfg.Params.N)
	cap := cfg.CacheCapacity
	bitArena := make([]uint64, words*n)
	slotArena := make([]bslot, cap*n)
	freeArena := make([]int32, cap*n)
	for i := 0; i < n; i++ {
		c := &p.caches[i]
		c.Init(cap, cfg.Params.N,
			bitArena[i*words:(i+1)*words],
			slotArena[i*cap:(i+1)*cap],
			// Three-index slice: the free stack must never grow past its
			// carve-out into the neighbour's.
			freeArena[i*cap:i*cap:(i+1)*cap])
		p.states[i] = core.ClientState{ID: int32(i), Cache: c}
		p.srcs[i] = *root.Split(1000 + uint64(i))
		p.ge[i] = faults.NewGE(dl, &p.srcs[i])
		p.handles[i] = Handle{p: p, i: int32(i)}
		p.connected[i] = true
		p.phase[i] = pcGapStart
		i := int32(i)
		p.wakes[i] = func() { p.step(i) }
		p.deadlineFns[i] = func() { p.deadlineFired(i) }
	}
	return p
}

// Handle returns client i's receiver/host facade for server.Attach and
// churn.Adversary.Attach.
func (p *Population) Handle(i int) *Handle { return &p.handles[i] }

// SetClock installs client i's injected clock-error model (delivery
// layer); the engine draws clocks in id order so assignments stay a pure
// function of the seed.
func (p *Population) SetClock(i int, clk delivery.Clock) { p.clocks[i] = clk }

// StartClient schedules client i's first lifecycle step at the current
// time — the aggregate analog of client.Start's process launch, costing
// the same single kernel event.
func (p *Population) StartClient(i int) {
	p.k.Schedule(0, p.wakes[i])
}

// hold suspends client i for d simulated seconds, resuming at cont — the
// analog of Proc.Hold: one scheduled event on the cached wake closure.
//
//hot — every think/nap timestep of every client; nothing allocates.
func (p *Population) hold(i int32, d float64, cont uint8) {
	p.phase[i] = cont
	p.k.Schedule(d, p.wakes[i])
}

// park suspends client i on the given signal, resuming at cont when a
// broadcast arrives — the analog of Proc.Wait, which appends to a waiter
// list and schedules nothing.
//
//hot — no events, no allocation; the wake comes from wakeIfParked.
func (p *Population) park(i int32, sig, cont uint8) {
	p.parked[i] = sig
	p.phase[i] = cont
}

// wakeIfParked is Signal.Broadcast collapsed to the single-waiter case:
// only client i's own process ever waits on its validated/fetch/online
// signals, so a broadcast wakes i exactly when it is parked on that
// signal, as one zero-delay event — the same event the proc path's
// Broadcast schedules, in the same order.
//
//hot — at most one freelist-backed kernel event; nothing allocates.
func (p *Population) wakeIfParked(i int32, sig uint8) {
	if p.parked[i] == sig {
		p.parked[i] = parkNone
		p.k.Schedule(0, p.wakes[i])
	}
}

// offline reports whether the churn layer currently holds client i down.
func (p *Population) offline(i int32) bool { return p.offlineStorm[i] || p.offlineCrash[i] }

// step dispatches client i's continuation — the body of every wake
// event. Each case resumes exactly where the process client would after
// the corresponding Hold or Wait returned.
func (p *Population) step(i int32) {
	switch p.phase[i] {
	case pcGapStart:
		p.gapStart(i)
	case pcAfterGap:
		p.afterGap(i)
	case pcIntervalLoop:
		p.intervalLoop(i)
	case pcIntervalBoundary:
		p.intervalBoundary(i)
	case pcDiscWake:
		p.discWake(i)
	case pcValidated:
		p.validatedCheck(i)
	case pcFetchDone:
		p.fetchDoneCheck(i)
	default:
		panic("population: unknown continuation")
	}
}

// gapStart is the top of the run loop: client.gap. Draw order matches
// the process client exactly — the disconnection coin (or the
// per-interval think draw) comes first, then the chosen duration.
func (p *Population) gapStart(i int32) {
	if p.cfg.DiscPerInterval {
		p.remaining[i] = p.srcs[i].Exp(p.cfg.MeanThink)
		p.intervalLoop(i)
		return
	}
	if p.srcs[i].Bool(p.cfg.ProbDisc) {
		p.disconnect(i, pcAfterGap)
		return
	}
	p.hold(i, p.srcs[i].Exp(p.cfg.MeanThink), pcAfterGap)
}

// intervalLoop is client.thinkPerInterval's boundary loop. remaining is
// decremented before the hold rather than after it returns — the value
// is unobservable in between, so the draw sequence is unchanged.
func (p *Population) intervalLoop(i int32) {
	if p.remaining[i] <= 0 {
		p.afterGap(i)
		return
	}
	now := p.k.Now()
	L := p.cfg.Params.L
	next := (math.Floor(now/L) + 1) * L
	step := next - now
	if p.remaining[i] < step {
		p.hold(i, p.remaining[i], pcAfterGap)
		return
	}
	p.remaining[i] -= step
	p.hold(i, step, pcIntervalBoundary)
}

// intervalBoundary is the disconnection coin at a crossed broadcast
// boundary.
func (p *Population) intervalBoundary(i int32) {
	if p.srcs[i].Bool(p.cfg.ProbDisc) {
		p.disconnect(i, pcIntervalLoop)
		return
	}
	p.intervalLoop(i)
}

// disconnect is client.disconnect up to its Hold; ret names where the
// reconnection path hands control back (the two call sites of the
// process client's disconnect).
func (p *Population) disconnect(i int32, ret uint8) {
	p.connected[i] = false
	p.states[i].AbandonPending()
	d := p.srcs[i].Exp(p.cfg.MeanDisc)
	p.mDisconnected()
	p.cfg.Tracer.Record(trace.Event{T: p.k.Now(), Kind: trace.Disconnect,
		Client: p.states[i].ID, B: int64(d * 1e6)})
	cnt := &p.counts[i]
	cnt.Disconnections++
	cnt.SoloDisconnects++
	cnt.DisconnectedFor += d
	p.retDisc[i] = ret
	p.hold(i, d, pcDiscWake)
}

// discWake resumes after the voluntary nap: the waitOnline loop, then
// the reconnection (fence reset, connected flag, trace), then the return
// to the disconnect call site. The aggregate engine runs one cell, so
// there is no OnWake mobility hook here — multi-cell coordination stays
// on the process path.
func (p *Population) discWake(i int32) {
	if p.offline(i) {
		p.park(i, parkOnline, pcDiscWake)
		return
	}
	p.states[i].ResetSeqFence()
	p.connected[i] = true
	p.cfg.Tracer.Record(trace.Event{T: p.k.Now(), Kind: trace.Reconnect,
		Client: p.states[i].ID})
	if p.retDisc[i] == pcIntervalLoop {
		p.intervalLoop(i)
		return
	}
	p.afterGap(i)
}

// afterGap is the run loop between gap and answer: the waitOnline guard,
// then the query issue (draw count, sample ids, trace) and the head of
// client.answer (open the query, arm the deadline), then the validation
// wait.
func (p *Population) afterGap(i int32) {
	if p.offline(i) {
		p.park(i, parkOnline, pcAfterGap)
		return
	}
	tq := p.k.Now()
	p.tq[i] = tq
	kq := p.cfg.QueryItems.Draw(&p.srcs[i])
	p.queryIDs[i] = p.cfg.QueryAccess.Sample(&p.srcs[i], kq, p.queryIDs[i][:0])
	p.cfg.Tracer.Record(trace.Event{T: tq, Kind: trace.QueryStart,
		Client: p.states[i].ID, B: int64(len(p.queryIDs[i]))})
	p.queryOpen[i] = true
	p.counts[i].QueriesIssued++
	p.expired[i] = false
	if p.cfg.QueryDeadline > 0 {
		p.deadline[i] = p.k.Schedule(p.cfg.QueryDeadline, p.deadlineFns[i])
	}
	p.validatedCheck(i)
}

// deadlineFired is the query-deadline event: mark the query expired and
// broadcast both answer-path signals, exactly as the process client's
// deadline closure does — at most one of them holds the waiter, so at
// most one wake event results.
func (p *Population) deadlineFired(i int32) {
	p.expired[i] = true
	p.wakeIfParked(i, parkValidated)
	p.wakeIfParked(i, parkFetch)
}

// validatedCheck is answer's validation wait: loop on Wait(validated)
// while the cache is not validated past the query instant and the
// deadline has not expired, with the expired verdict taking precedence
// once the loop exits.
func (p *Population) validatedCheck(i int32) {
	if p.states[i].Tlb <= p.tq[i] && !p.expired[i] {
		p.park(i, parkValidated, pcValidated)
		return
	}
	if p.expired[i] {
		p.giveUp(i, true)
		return
	}
	p.serveQuery(i)
}

// serveQuery is answer's post-validation body: serve hits from the
// cache, account AoI and consistency, and launch the fetch generation
// for the misses.
func (p *Population) serveQuery(i int32) {
	st := &p.states[i]
	cnt := &p.counts[i]
	now := p.k.Now()
	miss := p.missIDs[i][:0]
	for _, id := range p.queryIDs[i] {
		if e, ok := st.Cache.Lookup(id); ok {
			cnt.ItemsFromCache++
			if p.cfg.ConsistencyHook != nil {
				p.cfg.ConsistencyHook(st.ID, id, e.Version, st.Tlb)
			}
			p.observeAoI(i, now-e.TS, e.Version)
		} else {
			miss = append(miss, id)
		}
	}
	p.missIDs[i] = miss
	cnt.ItemsRequested += int64(len(miss))
	p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.QueryValidated,
		Client: st.ID, A: int64(len(p.queryIDs[i]) - len(miss)),
		B: int64(len(miss))})
	if len(miss) > 0 {
		p.pending[i] = int32(len(miss))
		p.fetchSeq[i]++
		p.fetchIDs[i] = append(p.fetchIDs[i][:0], miss...)
		if p.cfg.Retry.Enabled() {
			if p.fetchWant[i] == nil {
				p.fetchWant[i] = make(map[int32]bool, len(p.fetchIDs[i]))
			}
			for _, id := range p.fetchIDs[i] {
				p.fetchWant[i][id] = true
			}
		}
		if !p.sendFetch(i, 0) && !p.cfg.Retry.Enabled() {
			// The bounded uplink tail-dropped the only fetch request this
			// query will ever send: give up now rather than burn the
			// deadline waiting for nothing.
			p.k.Cancel(p.deadline[i])
			p.abandonFetch(i)
			cnt.QueriesShed++
			p.queryOpen[i] = false
			p.mQueryShed()
			p.cfg.Tracer.Record(trace.Event{T: p.k.Now(), Kind: trace.QueryShed,
				Client: st.ID, B: int64(len(miss))})
			p.gapStart(i)
			return
		}
		p.fetchDoneCheck(i)
		return
	}
	p.finishQuery(i)
}

// fetchDoneCheck is answer's fetch wait: loop on Wait(fetchSig) while
// items are outstanding and the deadline has not expired; an exhausted
// deadline with items still pending abandons the query.
func (p *Population) fetchDoneCheck(i int32) {
	if p.pending[i] > 0 && !p.expired[i] {
		p.park(i, parkFetch, pcFetchDone)
		return
	}
	if p.pending[i] > 0 {
		p.giveUp(i, false)
		return
	}
	p.finishQuery(i)
}

// finishQuery is answer's completion tail, then the jump back to the top
// of the run loop.
func (p *Population) finishQuery(i int32) {
	cnt := &p.counts[i]
	p.k.Cancel(p.deadline[i])
	p.queryOpen[i] = false
	cnt.QueriesAnswered++
	resp := p.k.Now() - p.tq[i]
	cnt.RespTime.Observe(resp)
	p.mQueryDone(resp)
	if p.cfg.RespHist != nil {
		p.cfg.RespHist.Observe(resp)
	}
	p.cfg.Tracer.Record(trace.Event{T: p.k.Now(), Kind: trace.QueryDone,
		Client: p.states[i].ID, B: int64(resp * 1e6)})
	p.gapStart(i)
}

// giveUp abandons the open query after its deadline expired
// (client.giveUp), then returns to the top of the run loop.
func (p *Population) giveUp(i int32, validating bool) {
	if validating {
		p.states[i].AbandonPending()
	}
	p.abandonFetch(i)
	cnt := &p.counts[i]
	cnt.QueriesTimedOut++
	p.queryOpen[i] = false
	p.mDeadlineMiss()
	p.cfg.Tracer.Record(trace.Event{T: p.k.Now(), Kind: trace.QueryDeadline,
		Client: p.states[i].ID, B: int64((p.k.Now() - p.tq[i]) * 1e6)})
	p.gapStart(i)
}

// abandonFetch cancels the outstanding fetch generation (client
// semantics: stale retry timers and late deliveries no-op).
func (p *Population) abandonFetch(i int32) {
	p.fetchSeq[i]++
	p.pending[i] = 0
	clear(p.fetchWant[i])
}

// sendFetch transmits a data request for the current fetch's missing
// items and, in retry mode, arms the backed-off re-request timer —
// client.sendFetch verbatim, including the fresh ids slice (the server's
// coalescing path may retain it past this event) and the fresh timer
// closure capturing the fetch generation.
func (p *Population) sendFetch(i int32, attempt int) bool {
	admitted := false
	if !p.offline(i) {
		ids := make([]int32, 0, len(p.fetchIDs[i]))
		for _, id := range p.fetchIDs[i] {
			if attempt == 0 || p.fetchWant[i][id] {
				ids = append(ids, id)
			}
		}
		var onTx func(sim.Time)
		if p.cfg.Tracer.Enabled(trace.UplinkTxStart) {
			onTx = func(t sim.Time) {
				p.cfg.Tracer.Record(trace.Event{T: t, Kind: trace.UplinkTxStart,
					Client: p.states[i].ID, A: 0})
			}
		}
		admitted = p.up.SendObserved(netsim.ClassData, p.cfg.FetchRequestBits, onTx, func() {
			p.server.OnFetch(p.states[i].ID, ids, p.k.Now())
		})
		if admitted {
			p.counts[i].FetchUplinkBits += p.cfg.FetchRequestBits
			p.cfg.Tracer.Record(trace.Event{T: p.k.Now(), Kind: trace.FetchSent,
				Client: p.states[i].ID, A: int64(len(ids)), B: int64(attempt)})
		}
	}
	if !p.cfg.Retry.Enabled() {
		return admitted
	}
	seq := p.fetchSeq[i]
	p.k.Schedule(p.cfg.Retry.Delay(attempt, &p.srcs[i]), func() {
		if seq != p.fetchSeq[i] || p.pending[i] == 0 {
			return // the fetch completed, or a newer one replaced it
		}
		p.counts[i].Retries++
		p.cfg.Tracer.Record(trace.Event{T: p.k.Now(), Kind: trace.RetryAttempt,
			Client: p.states[i].ID, A: 0, B: int64(attempt + 1)})
		p.sendFetch(i, attempt+1)
	})
	return admitted
}

// scheduleCtrlTimeout arms the give-up timer for a just-sent validation
// exchange — client.scheduleCtrlTimeout verbatim.
func (p *Population) scheduleCtrlTimeout(i int32, kindArg int64) {
	if !p.cfg.Retry.Enabled() {
		return
	}
	st := &p.states[i]
	seq := st.CheckSeq
	p.k.Schedule(p.cfg.Retry.Delay(int(p.ctrlTries[i]), &p.srcs[i]), func() {
		if st.CheckSeq != seq || !p.connected[i] {
			return // superseded, or already abandoned by a disconnect
		}
		if !st.AwaitingValidity && !st.SentTlb {
			return // the exchange completed in time
		}
		p.ctrlTries[i]++
		p.counts[i].Retries++
		p.mRetry()
		p.cfg.Tracer.Record(trace.Event{T: p.k.Now(), Kind: trace.RetryAttempt,
			Client: st.ID, A: kindArg, B: int64(p.ctrlTries[i])})
		st.AbandonPending()
	})
}

// handleOutcome applies a protocol step's verdict — client.handleOutcome
// verbatim: uplink the control message (with the feedback-delivery stamp
// and control timeout), then release the validation wait on Ready.
func (p *Population) handleOutcome(i int32, out core.Outcome, now sim.Time) {
	cnt := &p.counts[i]
	if out.EpochDegrade {
		cnt.EpochDegrades++
		p.mEpochDegrade()
	}
	if out.DroppedAll {
		p.mDropAll()
		p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.CacheDrop,
			Client: p.states[i].ID})
	}
	if out.Send != nil {
		bits := float64(out.Send.SizeBits(p.cfg.Params.Rep))
		msg := out.Send
		isFeedback := msg.Feedback != nil
		kindArg := int64(0)
		if isFeedback {
			kindArg = 1
		}
		var onTx func(sim.Time)
		if p.cfg.Tracer.Enabled(trace.UplinkTxStart) {
			exch := kindArg + 1 // UplinkTxStart encoding: 1 check, 2 feedback
			onTx = func(t sim.Time) {
				p.cfg.Tracer.Record(trace.Event{T: t, Kind: trace.UplinkTxStart,
					Client: p.states[i].ID, A: exch})
			}
		}
		st := &p.states[i]
		admitted := p.up.SendObserved(netsim.ClassControl, bits, onTx, func() {
			if isFeedback {
				st.FeedbackDeliveredAt = p.k.Now()
			}
			p.server.OnControl(msg, p.k.Now())
		})
		if admitted {
			cnt.ValidationUplinkBits += bits
			cnt.ValidationUplinkMsgs++
			p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.ControlSent,
				Client: st.ID, A: kindArg, B: int64(bits)})
		}
		p.scheduleCtrlTimeout(i, kindArg+1)
	}
	if out.Ready {
		p.ctrlTries[i] = 0
		p.wakeIfParked(i, parkValidated)
	}
}

// observeAoI records one answered item's age-of-information sample —
// client.observeAoI verbatim.
func (p *Population) observeAoI(i int32, age float64, version int32) {
	if version == 0 || p.cfg.AoIHist == nil {
		return
	}
	cnt := &p.counts[i]
	cnt.AoISamples++
	cnt.AoISum += age
	p.cfg.AoIHist.Observe(age)
	p.mAoI(age)
}

// fenceAdmit runs the broadcast sequence fence and the stale-by-skew
// guard over a report that survived the loss model —
// client.fenceAdmit verbatim.
func (p *Population) fenceAdmit(i int32, r report.Report, now sim.Time) bool {
	st := &p.states[i]
	cnt := &p.counts[i]
	seq := report.SeqOf(r)
	if st.HasSeq {
		switch d := report.SeqDelta(seq, st.LastSeq); {
		case d == 0:
			cnt.IRDuplicates++
			p.mIRDuplicate()
			p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.IRDuplicate,
				Client: st.ID, A: int64(seq)})
			return false
		case d < 0:
			cnt.IRReorders++
			p.mIRReorder()
			p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.IRReorder,
				Client: st.ID, A: int64(d)})
			return false
		case d > 1:
			cnt.IRGaps++
			p.mIRGap()
			p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.IRGap,
				Client: st.ID, A: int64(d)})
			st.SeqGap = true
		}
	}
	st.LastSeq = seq
	st.HasSeq = true
	if p.cfg.SkewEpsilon > 0 && r.Time() > p.clocks[i].Read(now)+p.cfg.SkewEpsilon {
		cnt.SkewDegrades++
		st.SeqGap = true
	}
	return true
}

// deliverReport is the protocol step behind Handle.DeliverReport —
// client.DeliverReport verbatim: loss model, fence, scheme handler,
// outcome.
func (p *Population) deliverReport(i int32, r report.Report, now sim.Time) {
	if !p.connected[i] || p.offline(i) {
		return
	}
	st := &p.states[i]
	cnt := &p.counts[i]
	if g := p.ge[i]; g != nil {
		switch g.Next() {
		case faults.Lose:
			cnt.ReportsLost++
			p.mReportLost()
			p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.FaultLoss,
				Client: st.ID, A: int64(netsim.ClassReport)})
			return
		case faults.Corrupt:
			// Run the real codec over the truncated bitstream so corruption
			// surfaces as a decode error; a nil error means the codec
			// accepted a mangled frame.
			w := bitio.GetWriter()
			err := report.CorruptDecode(r, p.cfg.Params.Rep, w)
			bitio.PutWriter(w)
			if err == nil {
				panic("population: corrupted report decoded cleanly")
			}
			cnt.ReportsCorrupted++
			p.mReportCorrupted()
			p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.FaultCorrupt,
				Client: st.ID, A: int64(netsim.ClassReport)})
			return
		}
	}
	if p.cfg.FenceSeq && !p.fenceAdmit(i, r, now) {
		return
	}
	cnt.ReportsHeard++
	salvagesBefore := st.Salvages
	out := p.cfg.Side.HandleReport(st, r, now)
	p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.ReportDelivered,
		Client: st.ID, A: int64(r.Kind())})
	if st.Salvages > salvagesBefore {
		p.mSalvage()
		p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.CacheSalvage, Client: st.ID})
	}
	p.handleOutcome(i, out, now)
}

// deliverValidity is client.DeliverValidity verbatim.
func (p *Population) deliverValidity(i int32, v *report.ValidityReport, now sim.Time) {
	st := &p.states[i]
	if !p.connected[i] || p.offline(i) || !st.AwaitingValidity {
		p.counts[i].StaleValidityDropped++
		p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.ValidityDelivered,
			Client: st.ID, A: 1})
		return
	}
	p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.ValidityDelivered,
		Client: st.ID})
	p.handleOutcome(i, p.cfg.Side.HandleValidity(st, v, now), now)
}

// deliverItem is client.DeliverItem verbatim: cache the arrival, count
// down the want-list in retry mode, and release the fetch wait when the
// generation drains.
func (p *Population) deliverItem(i, id, version int32, ts float64, now sim.Time) {
	if p.offline(i) {
		p.counts[i].OfflineDrops++
		return
	}
	p.cfg.Tracer.Record(trace.Event{T: now, Kind: trace.ItemDelivered,
		Client: p.states[i].ID, A: int64(id)})
	p.states[i].Cache.Put(id, ts, version)
	if len(p.fetchWant[i]) > 0 {
		if !p.fetchWant[i][id] {
			return
		}
		delete(p.fetchWant[i], id)
	}
	if p.pending[i] > 0 {
		p.observeAoI(i, now-ts, version)
		p.pending[i]--
		if p.pending[i] == 0 {
			p.wakeIfParked(i, parkFetch)
		}
	}
}

// resumeIfOnline ends a forced-offline episode — client.resumeIfOnline
// verbatim: fence forgotten, parked lifecycle woken.
func (p *Population) resumeIfOnline(i int32) {
	if p.offline(i) {
		return
	}
	p.states[i].ResetSeqFence()
	p.wakeIfParked(i, parkOnline)
}
