package population_test

import (
	"testing"

	"mobicache/internal/churn"
	"mobicache/internal/delivery"
	"mobicache/internal/engine"
	"mobicache/internal/faults"
	"mobicache/internal/metrics"
)

// Full-stack exercise of the aggregate population through the engine:
// every delivery, fault, churn and overload path in this package runs
// under its real driver. The bit-level equivalence against the proc path
// is proven by internal/engine's differential suite; these runs assert
// the package-local invariants (work happened, nothing went stale) while
// giving the population's own coverage profile the lifecycle paths the
// unit tests cannot reach.
func aggBase(seed uint64) engine.Config {
	c := engine.Default()
	c.Aggregate = true
	c.Clients = 48
	c.SimTime = 4000
	c.MeanDisc = 400
	c.ConsistencyCheck = true
	c.Seed = seed
	return c
}

func run(t *testing.T, c engine.Config) *engine.Results {
	t.Helper()
	r, err := engine.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.ConsistencyViolations != 0 {
		t.Fatalf("%d stale reads; first: %v", r.ConsistencyViolations, r.FirstViolation)
	}
	return r
}

func retry() faults.RetryPolicy {
	return faults.RetryPolicy{
		Timeout: 240, Backoff: 2, MaxDelay: 1920, Jitter: 0.2, MaxAttempts: 6,
	}
}

func TestAggregateLifecycleAllSchemes(t *testing.T) {
	for _, scheme := range []string{"ts", "ts-check", "at", "bs", "afw", "aaw", "sig"} {
		t.Run(scheme, func(t *testing.T) {
			c := aggBase(1)
			c.Scheme = scheme
			r := run(t, c)
			if r.QueriesAnswered == 0 {
				t.Fatal("population answered nothing")
			}
		})
	}
}

func TestAggregateUnderChaos(t *testing.T) {
	c := aggBase(2)
	c.Scheme = "ts-check"
	c.Faults = faults.Config{
		DownLoss:  faults.GEParams{PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.5, CorruptBad: 0.1},
		UpLoss:    faults.GEParams{PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.3},
		CrashMTBF: 2000,
		CrashMTTR: 120,
		Retry:     retry(),
	}
	r := run(t, c)
	if r.ReportsLost == 0 {
		t.Fatal("GE chain lost nothing at LossBad=0.5")
	}
	if r.Retries == 0 {
		t.Fatal("uplink loss with a retry policy produced no retries")
	}
}

func TestAggregateUnderOverload(t *testing.T) {
	c := aggBase(3)
	c.Scheme = "aaw"
	c.Overload.UpQueueCap = 4
	c.Overload.DownQueueCap = 4
	c.Overload.QueryDeadline = 2 * c.Period
	c.Overload.ServerPendingCap = 4
	c.Overload.Coalesce = true
	r := run(t, c)
	if r.QueriesTimedOut == 0 && r.QueriesShed == 0 {
		t.Fatal("tight caps produced no degradation at all")
	}
	if got := r.QueriesAnswered + r.QueriesTimedOut + r.QueriesShed + r.QueriesInFlight; got != r.QueriesIssued {
		t.Fatalf("accounting identity broken: issued=%d, parts sum to %d", r.QueriesIssued, got)
	}
}

func TestAggregateUnderDelivery(t *testing.T) {
	c := aggBase(4)
	c.Scheme = "aaw"
	c.Delivery = delivery.Severity(2)
	c.Faults.Retry = retry()
	c.Spans = &engine.SpanOptions{}
	c.Metrics = metrics.New()
	r := run(t, c)
	if r.DeliveryDelayed == 0 {
		t.Fatal("delivery adversary idle at severity 2")
	}
}

func TestAggregateUnderChurn(t *testing.T) {
	c := aggBase(5)
	c.Scheme = "ts-check"
	c.Churn = churn.Severity(3)
	c.Faults.Retry = retry()
	c.Metrics = metrics.New()
	c.Warmup = 500
	r := run(t, c)
	if r.Storms == 0 || r.ClientCrashes == 0 {
		t.Fatal("churn adversary idle at severity 3")
	}
	if r.RestartsWarm+r.RestartsCold == 0 {
		t.Fatal("no restart path exercised")
	}
	if r.Disconnections != r.StormDisconnects+r.SoloDisconnects {
		t.Fatalf("disconnect identity broken: total=%d storm=%d solo=%d",
			r.Disconnections, r.StormDisconnects, r.SoloDisconnects)
	}
}
