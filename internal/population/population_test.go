package population

import (
	"reflect"
	"testing"

	"mobicache/internal/core"
	"mobicache/internal/netsim"
	"mobicache/internal/rng"
	"mobicache/internal/sim"
	"mobicache/internal/workload"
)

type stubServer struct{}

func (stubServer) OnControl(msg *core.ControlMsg, now sim.Time)       {}
func (stubServer) OnFetch(clientID int32, ids []int32, now sim.Time)  {}

func newTestPopulation(t *testing.T, clients int) (*Population, *sim.Kernel) {
	t.Helper()
	k := sim.New()
	t.Cleanup(k.Shutdown)
	up := netsim.NewChannel(k, "uplink", 10000)
	params := core.DefaultParams(100)
	scheme, err := core.Lookup("ts")
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Uniform(100)
	return New(k, up, stubServer{}, Config{
		Clients:       clients,
		Side:          scheme.NewClient(params),
		Params:        params,
		CacheCapacity: 4,
		QueryAccess:   wl.Query,
		QueryItems:    wl.QueryItems,
		MeanThink:     100,
		MeanDisc:      400,
		ProbDisc:      0.1,
	}, rng.New(1)), k
}

// TestPopulationResetStatsZeroesEveryCounter reflect-guards the
// aggregate warmup reset, exactly like the proc client's
// TestResetStatsZeroesEveryCounter: every field of Counters must return
// to zero on an idle client. A counter added to the struct without
// warmup handling fails here, not by silently leaking warmup traffic
// into the measured interval.
func TestPopulationResetStatsZeroesEveryCounter(t *testing.T) {
	p, _ := newTestPopulation(t, 3)
	for i := 0; i < p.Clients(); i++ {
		v := reflect.ValueOf(p.Count(i)).Elem()
		ty := v.Type()
		for j := 0; j < ty.NumField(); j++ {
			fv := v.Field(j)
			switch fv.Kind() {
			case reflect.Int64:
				fv.SetInt(7)
			case reflect.Float64:
				fv.SetFloat(7.5)
			case reflect.Struct:
				// stats.Tally: poke its exported numeric fields directly.
				for s := 0; s < fv.NumField(); s++ {
					if sf := fv.Field(s); sf.CanSet() && sf.Kind() == reflect.Float64 {
						sf.SetFloat(7.5)
					} else if sf.CanSet() && sf.Kind() == reflect.Int64 {
						sf.SetInt(7)
					}
				}
			default:
				t.Fatalf("unhandled Counters field %s of kind %v; extend the reset guard",
					ty.Field(j).Name, fv.Kind())
			}
		}
	}
	p.ResetStats()
	for i := 0; i < p.Clients(); i++ {
		v := reflect.ValueOf(p.Count(i)).Elem()
		for j := 0; j < v.NumField(); j++ {
			if !v.Field(j).IsZero() {
				t.Errorf("client %d: ResetStats left %s = %v on an idle client",
					i, v.Type().Field(j).Name, v.Field(j))
			}
		}
	}
}

// TestPopulationResetStatsCarriesInFlight pins the warmup carry-over: an
// open query stays issued and a straddling crash stays counted, so the
// measured-interval accounting identities close.
func TestPopulationResetStatsCarriesInFlight(t *testing.T) {
	p, _ := newTestPopulation(t, 2)
	p.queryOpen[0] = true
	p.offlineCrash[1] = true
	p.counts[0].QueriesIssued = 5
	p.counts[1].Crashes = 3
	p.ResetStats()
	if got := p.Count(0).QueriesIssued; got != 1 {
		t.Fatalf("in-flight query not carried: QueriesIssued=%d, want 1", got)
	}
	if got := p.Count(1).Crashes; got != 1 {
		t.Fatalf("straddling crash not carried: Crashes=%d, want 1", got)
	}
	if p.InFlight(0) != 1 || p.InFlight(1) != 0 {
		t.Fatal("InFlight view diverged from queryOpen state")
	}
	if !p.CrashedDown(1) || p.CrashedDown(0) {
		t.Fatal("CrashedDown view diverged from offlineCrash state")
	}
}

// TestPopulationCountersMirrorClient guards the layout contract: every
// exported int64/float64/Tally statistics field of client.Client must
// exist in Counters under the same name, so the engine's shared
// collection function cannot silently miss a counter on one path.
// (Checked from the engine side by clientCounters, which fails to
// compile on a missing field; this pins the direction population-side.)
func TestPopulationCountersMirrorClient(t *testing.T) {
	ty := reflect.TypeOf(Counters{})
	want := []string{
		"QueriesIssued", "QueriesAnswered", "QueriesTimedOut", "QueriesShed",
		"BusyHeard", "ItemsRequested", "ItemsFromCache", "RespTime",
		"Disconnections", "SoloDisconnects", "StormDisconnects", "Crashes",
		"RestartsWarm", "RestartsCold", "SnapshotRejects", "OfflineDrops",
		"DisconnectedFor", "ReportsHeard", "ReportsLost", "ReportsCorrupted",
		"Retries", "EpochDegrades", "IRGaps", "IRDuplicates", "IRReorders",
		"SkewDegrades", "ValidationUplinkBits", "ValidationUplinkMsgs",
		"FetchUplinkBits", "StaleValidityDropped", "AoISamples", "AoISum",
	}
	for _, name := range want {
		if _, ok := ty.FieldByName(name); !ok {
			t.Errorf("Counters is missing client statistics field %s", name)
		}
	}
	if ty.NumField() != len(want) {
		t.Errorf("Counters has %d fields, test names %d; keep the mirror list current",
			ty.NumField(), len(want))
	}
}
