package population

import (
	"mobicache/internal/core"
	"mobicache/internal/stats"
)

// Result-collection accessors. The engine's collection loop walks
// clients in index order summing the same fields in the same order on
// both paths, so every float64 accumulation is bit-identical.

// Clients reports the population size.
func (p *Population) Clients() int { return p.cfg.Clients }

// Count exposes client i's measurement counters.
func (p *Population) Count(i int) *Counters { return &p.counts[i] }

// State exposes client i's protocol state.
func (p *Population) State(i int) *core.ClientState { return &p.states[i] }

// InFlight mirrors client.InFlight: 1 while client i's query is issued
// but not yet answered, timed out, or shed.
func (p *Population) InFlight(i int) int64 {
	if p.queryOpen[i] {
		return 1
	}
	return 0
}

// CrashedDown mirrors client.CrashedDown for the horizon-straddling
// crash accounting.
func (p *Population) CrashedDown(i int) bool { return p.offlineCrash[i] }

// TotalAnswered sums answered queries across the population for the
// engine's batch-means sampler.
func (p *Population) TotalAnswered() int64 {
	var total int64
	for i := range p.counts {
		total += p.counts[i].QueriesAnswered
	}
	return total
}

// CacheTotals sums Lookup outcomes across the population for the
// timeline hit-ratio gauge.
func (p *Population) CacheTotals() (hits, accesses int64) {
	for i := range p.caches {
		h := p.caches[i].Hits()
		hits += h
		accesses += h + p.caches[i].Misses()
	}
	return hits, accesses
}

// ResetStats zeroes every client's measurement counters at the warmup
// boundary — client.ResetStats applied across the population in index
// order; protocol and cache state are untouched.
func (p *Population) ResetStats() {
	for i := range p.counts {
		cnt := &p.counts[i]
		// A query straddling the warmup boundary stays issued so the
		// accounting identity holds over the measured interval; a crash
		// straddling it stays counted so the restart identity closes.
		*cnt = Counters{QueriesIssued: p.InFlight(i)}
		if p.offlineCrash[i] {
			cnt.Crashes = 1
		}
		cnt.RespTime = stats.Tally{}
		p.states[i].Cache.ResetStats()
		p.states[i].Drops = 0
		p.states[i].Salvages = 0
	}
}
