package population

import (
	"mobicache/internal/churn"
	"mobicache/internal/core"
	"mobicache/internal/report"
	"mobicache/internal/sim"
)

// Handle is one client's facade over the aggregate population: it
// implements server.Receiver (downlink deliveries) and churn.Host
// (forced-offline transitions) by indexing into the population's flat
// slices. One Handle per client lives in a flat slice too, so attaching
// a million receivers allocates nothing beyond the array.
type Handle struct {
	p *Population
	i int32
}

// ID implements server.Receiver.
func (h *Handle) ID() int32 { return h.p.states[h.i].ID }

// Connected implements server.Receiver: the host hears the cell only
// when it is not voluntarily asleep and not forced offline.
func (h *Handle) Connected() bool {
	return h.p.connected[h.i] && !h.p.offline(h.i)
}

// DeliverReport implements server.Receiver.
//
//hot — the broadcast tick fans one report out to the whole population.
func (h *Handle) DeliverReport(r report.Report, now sim.Time) {
	h.p.deliverReport(h.i, r, now)
}

// DeliverValidity implements server.Receiver.
func (h *Handle) DeliverValidity(v *report.ValidityReport, now sim.Time) {
	h.p.deliverValidity(h.i, v, now)
}

// DeliverItem implements server.Receiver.
func (h *Handle) DeliverItem(id int32, version int32, ts float64, now sim.Time) {
	h.p.deliverItem(h.i, id, version, ts, now)
}

// DeliverBusy implements server.Receiver — client.DeliverBusy verbatim:
// count the rejection; recovery rides the armed retry/deadline
// machinery.
func (h *Handle) DeliverBusy(id int32, now sim.Time) {
	if h.p.offline(h.i) {
		return
	}
	h.p.counts[h.i].BusyHeard++
}

// State implements churn.Host.
func (h *Handle) State() *core.ClientState { return &h.p.states[h.i] }

// StormDown implements churn.Host — client.StormDown verbatim.
func (h *Handle) StormDown() {
	p, i := h.p, h.i
	if p.offlineStorm[i] {
		return
	}
	p.offlineStorm[i] = true
	p.states[i].AbandonPending()
	cnt := &p.counts[i]
	cnt.Disconnections++
	cnt.StormDisconnects++
	p.mStormDisconnect()
}

// StormUp implements churn.Host — client.StormUp verbatim.
func (h *Handle) StormUp(paced bool) {
	p, i := h.p, h.i
	if !p.offlineStorm[i] {
		return
	}
	p.offlineStorm[i] = false
	p.resumeIfOnline(i)
}

// CrashDown implements churn.Host — client.CrashDown verbatim.
func (h *Handle) CrashDown() {
	p, i := h.p, h.i
	if p.offlineCrash[i] {
		return
	}
	p.offlineCrash[i] = true
	p.states[i].AbandonPending()
	p.counts[i].Crashes++
	p.mClientCrash()
}

// Restart implements churn.Host — client.Restart verbatim: warm
// reinstates the persisted cache, validation horizon and epoch; cold
// drops everything a process keeps in memory. Scheme-specific Ext state
// is process memory and is lost either way.
func (h *Handle) Restart(snap *churn.Snapshot, rejected bool) {
	p, i := h.p, h.i
	if !p.offlineCrash[i] {
		panic("population: restart without a crash")
	}
	st := &p.states[i]
	cnt := &p.counts[i]
	if snap != nil {
		st.Cache.Reload(snap.Entries)
		st.Tlb = snap.Tlb
		st.Epoch = snap.Epoch
		st.Salvages++
		cnt.RestartsWarm++
		p.mRestartWarm()
	} else {
		st.Cache.DropAll()
		st.Drops++
		st.Tlb = 0
		st.Epoch = 0
		cnt.RestartsCold++
		p.mRestartCold()
		if rejected {
			cnt.SnapshotRejects++
			p.mSnapshotReject()
		}
	}
	st.Ext = nil
	p.offlineCrash[i] = false
	p.resumeIfOnline(i)
}

// CrashedDown mirrors client.CrashedDown for the engine's
// horizon-straddling crash accounting.
func (h *Handle) CrashedDown() bool { return h.p.offlineCrash[h.i] }
