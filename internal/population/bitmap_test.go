package population

import (
	"testing"

	"mobicache/internal/cache"
)

// The BitmapCache is trusted only because everything observable about it
// — LRU order, hit/miss/eviction/invalidation/drop accounting, entry
// contents, reload semantics — is differentially pinned against the
// canonical map-indexed LRU in internal/cache, by a fuzzer over random
// op streams and by boundary tables at the item-space word edges.

// sameEntry compares the observable fields of two entries. cache.Entry
// carries unexported intrusive-list indexes that are representation
// residue, not cache state, so whole-struct equality would compare
// internals no caller can see.
func sameEntry(a, b cache.Entry) bool {
	return a.ID == b.ID && a.TS == b.TS && a.Version == b.Version
}

// pair drives the two representations in lockstep and asserts every
// observable agrees after each operation.
type pair struct {
	t   *testing.T
	ref *cache.Cache
	bm  *BitmapCache
}

func newPair(t *testing.T, capacity, items int) *pair {
	return &pair{t: t, ref: cache.New(capacity), bm: NewBitmapCache(capacity, items)}
}

func (p *pair) check() {
	p.t.Helper()
	if p.ref.Len() != p.bm.Len() {
		p.t.Fatalf("len diverged: ref=%d bm=%d", p.ref.Len(), p.bm.Len())
	}
	if p.ref.Hits() != p.bm.Hits() || p.ref.Misses() != p.bm.Misses() {
		p.t.Fatalf("lookup stats diverged: ref=%d/%d bm=%d/%d",
			p.ref.Hits(), p.ref.Misses(), p.bm.Hits(), p.bm.Misses())
	}
	if p.ref.Evictions() != p.bm.Evictions() ||
		p.ref.Invalidations() != p.bm.Invalidations() ||
		p.ref.Drops() != p.bm.Drops() {
		p.t.Fatalf("churn stats diverged: ref=%d/%d/%d bm=%d/%d/%d",
			p.ref.Evictions(), p.ref.Invalidations(), p.ref.Drops(),
			p.bm.Evictions(), p.bm.Invalidations(), p.bm.Drops())
	}
	if p.ref.HitRatio() != p.bm.HitRatio() {
		p.t.Fatalf("hit ratio diverged: ref=%v bm=%v", p.ref.HitRatio(), p.bm.HitRatio())
	}
	a := p.ref.Entries(nil)
	b := p.bm.Entries(nil)
	if len(a) != len(b) {
		p.t.Fatalf("entries diverged: ref=%v bm=%v", a, b)
	}
	for i := range a {
		if !sameEntry(a[i], b[i]) {
			p.t.Fatalf("entry %d diverged (MRU order): ref=%v bm=%v", i, a[i], b[i])
		}
	}
	ids1 := p.ref.IDs(nil)
	ids2 := p.bm.IDs(nil)
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			p.t.Fatalf("id order diverged: ref=%v bm=%v", ids1, ids2)
		}
	}
	// Each must visit the same MRU prefix and honour early stop.
	if len(a) > 1 {
		var ea, eb []cache.Entry
		p.ref.Each(func(e cache.Entry) bool { ea = append(ea, e); return len(ea) < 2 })
		p.bm.Each(func(e cache.Entry) bool { eb = append(eb, e); return len(eb) < 2 })
		if len(ea) != len(eb) || !sameEntry(ea[0], eb[0]) || !sameEntry(ea[1], eb[1]) {
			p.t.Fatalf("Each diverged: ref=%v bm=%v", ea, eb)
		}
	}
}

// step applies one fuzz-chosen operation to both representations.
// Returns false if the op byte is a no-op for this position.
func (p *pair) step(op byte, id int32, ts float64, ver int32) {
	p.t.Helper()
	switch op % 8 {
	case 0, 1:
		e1, ok1 := p.ref.Lookup(id)
		e2, ok2 := p.bm.Lookup(id)
		if ok1 != ok2 || !sameEntry(e1, e2) {
			p.t.Fatalf("Lookup(%d) diverged: ref=%v,%v bm=%v,%v", id, e1, ok1, e2, ok2)
		}
	case 2:
		e1, ok1 := p.ref.Peek(id)
		e2, ok2 := p.bm.Peek(id)
		if ok1 != ok2 || !sameEntry(e1, e2) {
			p.t.Fatalf("Peek(%d) diverged: ref=%v,%v bm=%v,%v", id, e1, ok1, e2, ok2)
		}
	case 3, 4:
		p.ref.Put(id, ts, ver)
		p.bm.Put(id, ts, ver)
	case 5:
		if p.ref.Invalidate(id) != p.bm.Invalidate(id) {
			p.t.Fatalf("Invalidate(%d) verdicts diverged", id)
		}
	case 6:
		p.ref.TouchAll(ts)
		p.bm.TouchAll(ts)
	case 7:
		p.ref.DropAll()
		p.bm.DropAll()
	}
	p.check()
}

// FuzzBitmapCache feeds both representations the same op stream and
// fails on the first observable divergence. The corpus seeds cover the
// word edges of the presence bitmap (ids 0, 63, 64) and capacity-1
// eviction pressure.
func FuzzBitmapCache(f *testing.F) {
	f.Add(uint8(4), uint8(200), []byte{3, 0, 3, 63, 3, 64, 0, 63, 5, 0, 7, 7})
	f.Add(uint8(1), uint8(100), []byte{3, 1, 3, 2, 3, 3, 0, 1, 0, 3})
	f.Add(uint8(8), uint8(65), []byte{3, 64, 3, 0, 6, 10, 5, 64, 2, 64})
	f.Add(uint8(16), uint8(255), []byte{3, 254, 3, 0, 3, 127, 3, 128, 0, 254, 7, 0})
	f.Fuzz(func(t *testing.T, capRaw, itemsRaw uint8, ops []byte) {
		capacity := int(capRaw%32) + 1
		items := int(itemsRaw) + 1
		p := newPair(t, capacity, items)
		ts := 0.0
		for i := 0; i+1 < len(ops); i += 2 {
			ts += 0.5
			id := int32(int(ops[i+1]) % items)
			p.step(ops[i], id, ts, int32(ops[i])%7)
		}
	})
}

// TestBitmapBoundaryIDs walks the item-space edges where the presence
// bitmap's word indexing could slip: first and last bit of a word, the
// last id of the space, single-word and multi-word spaces.
func TestBitmapBoundaryIDs(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		items    int
		ids      []int32
	}{
		{"single-word", 4, 64, []int32{0, 1, 62, 63}},
		{"word-edge", 4, 128, []int32{63, 64, 65, 127}},
		{"last-id", 3, 1000, []int32{0, 511, 512, 999}},
		{"tiny-space", 2, 3, []int32{0, 1, 2}},
		{"capacity-one", 1, 256, []int32{0, 63, 64, 255}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newPair(t, tc.capacity, tc.items)
			ts := 1.0
			for _, id := range tc.ids {
				p.ref.Put(id, ts, 1)
				p.bm.Put(id, ts, 1)
				p.check()
				ts++
			}
			for _, id := range tc.ids {
				e1, ok1 := p.ref.Lookup(id)
				e2, ok2 := p.bm.Lookup(id)
				if ok1 != ok2 || !sameEntry(e1, e2) {
					t.Fatalf("Lookup(%d) diverged: ref=%v,%v bm=%v,%v", id, e1, ok1, e2, ok2)
				}
				p.check()
			}
			for _, id := range tc.ids {
				if p.ref.Invalidate(id) != p.bm.Invalidate(id) {
					t.Fatalf("Invalidate(%d) verdicts diverged", id)
				}
				p.check()
			}
		})
	}
}

// TestBitmapReloadMirrorsCache pins the warm-restart transplant path:
// Reload replaces contents without touching statistics, exactly like the
// map cache, and both panic on overflow and duplicates.
func TestBitmapReloadMirrorsCache(t *testing.T) {
	p := newPair(t, 4, 128)
	p.ref.Put(5, 1, 1)
	p.bm.Put(5, 1, 1)
	p.ref.Lookup(5)
	p.bm.Lookup(5)
	p.ref.Lookup(99)
	p.bm.Lookup(99)
	entries := []cache.Entry{{ID: 64, TS: 3, Version: 2}, {ID: 63, TS: 2, Version: 1}}
	p.ref.Reload(entries)
	p.bm.Reload(entries)
	p.check()
	if p.bm.Hits() != 1 || p.bm.Misses() != 1 {
		t.Fatalf("Reload touched stats: hits=%d misses=%d", p.bm.Hits(), p.bm.Misses())
	}

	for name, bad := range map[string][]cache.Entry{
		"overflow":  {{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}, {ID: 5}},
		"duplicate": {{ID: 7}, {ID: 7}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s reload did not panic", name)
				}
			}()
			NewBitmapCache(4, 128).Reload(bad)
		}()
	}
}

// TestBitmapResetStats mirrors cache.ResetStats: all five counters zero,
// contents untouched.
func TestBitmapResetStats(t *testing.T) {
	p := newPair(t, 2, 64)
	for id := int32(0); id < 5; id++ {
		p.ref.Put(id, 1, 1)
		p.bm.Put(id, 1, 1)
	}
	p.ref.Lookup(4)
	p.bm.Lookup(4)
	p.ref.Lookup(60)
	p.bm.Lookup(60)
	p.ref.Invalidate(4)
	p.bm.Invalidate(4)
	p.ref.DropAll()
	p.bm.DropAll()
	p.ref.ResetStats()
	p.bm.ResetStats()
	p.check()
	if p.bm.Evictions() != 0 || p.bm.Invalidations() != 0 || p.bm.Drops() != 0 {
		t.Fatal("ResetStats left churn counters nonzero")
	}
}

// TestBitmapArenaIsolation pins the shared-arena construction: caches
// carved from one arena must never bleed into a neighbour's slots, even
// at full capacity churn on both sides of the carve boundary.
func TestBitmapArenaIsolation(t *testing.T) {
	const n, capacity, items = 3, 4, 128
	words := BitmapWords(items)
	bits := make([]uint64, words*n)
	slots := make([]bslot, capacity*n)
	free := make([]int32, capacity*n)
	var caches [n]BitmapCache
	for i := 0; i < n; i++ {
		caches[i].Init(capacity, items,
			bits[i*words:(i+1)*words],
			slots[i*capacity:(i+1)*capacity],
			free[i*capacity:i*capacity:(i+1)*capacity])
	}
	// Churn every cache past capacity with distinct id streams.
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			for j := 0; j < 2*capacity; j++ {
				caches[i].Put(int32((i*40+j+round)%items), float64(j), int32(i))
			}
		}
	}
	for i := 0; i < n; i++ {
		if caches[i].Len() != capacity {
			t.Fatalf("cache %d len %d, want %d", i, caches[i].Len(), capacity)
		}
		caches[i].Each(func(e cache.Entry) bool {
			if e.Version != int32(i) {
				t.Fatalf("cache %d holds neighbour entry %+v", i, e)
			}
			return true
		})
		caches[i].DropAll()
		if caches[i].Len() != 0 {
			t.Fatalf("cache %d not empty after DropAll", i)
		}
	}
}
