package population

import (
	"fmt"
	"runtime"
	"testing"

	"mobicache/internal/core"
	"mobicache/internal/db"
	"mobicache/internal/netsim"
	"mobicache/internal/report"
	"mobicache/internal/rng"
	"mobicache/internal/sim"
	"mobicache/internal/workload"
)

// benchPopulation builds an n-client population sized for the scale axis:
// a 1000-item space and 8-entry caches keep a million clients inside a
// laptop's memory while still exercising the word-indexed bitmaps and the
// shared slot arenas. Returns the population and the arena bytes it cost.
func benchPopulation(n int) (*Population, *sim.Kernel, uint64) {
	k := sim.New()
	up := netsim.NewChannel(k, "uplink", 1e9)
	params := core.DefaultParams(1000)
	scheme, err := core.Lookup("ts")
	if err != nil {
		panic(err)
	}
	wl := workload.Uniform(1000)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	p := New(k, up, stubServer{}, Config{
		Clients:       n,
		Side:          scheme.NewClient(params),
		Params:        params,
		CacheCapacity: 8,
		QueryAccess:   wl.Query,
		QueryItems:    wl.QueryItems,
		MeanThink:     100,
		MeanDisc:      400,
		ProbDisc:      0.1,
	}, rng.New(1))
	runtime.GC()
	runtime.ReadMemStats(&after)
	bytes := after.HeapAlloc - before.HeapAlloc

	// Steady-state cache contents: ids the tick's report never names, so
	// every report entry costs one bitmap miss per client and the contents
	// never churn between ticks.
	for i := 0; i < n; i++ {
		for id := int32(0); id < 4; id++ {
			p.states[i].Cache.Put(500+id, 1e9, 1)
		}
	}
	return p, k, bytes
}

// tickReport is the fan-out payload: a current timestamp-window report
// naming a handful of updated items, exactly what the server broadcasts
// every period.
func tickReport(t float64) *report.TSReport {
	return &report.TSReport{
		T:           t,
		WindowStart: t - 200,
		Entries: []db.UpdateEntry{
			{ID: 0, TS: t - 1}, {ID: 63, TS: t - 1},
			{ID: 64, TS: t - 1}, {ID: 999, TS: t - 1},
		},
	}
}

// tick fans one report out to every client — the aggregate broadcast
// step the engine performs once per period.
func tick(p *Population, r *report.TSReport, now sim.Time) {
	for i := range p.handles {
		p.handles[i].DeliverReport(r, now)
	}
}

// BenchmarkAggregateTick measures the broadcast fan-out at population
// scale: one op is one full tick (report delivery to every client). The
// steady-state tick must not allocate — the cost of waking a million
// clients is pointer math over the flat arenas, nothing else — and the
// bytes/client metric records what the whole population costs to hold.
func BenchmarkAggregateTick(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			if testing.Short() && n > 10_000 {
				b.Skip("large populations skipped in -short mode")
			}
			p, _, bytes := benchPopulation(n)
			r := tickReport(1000)
			tick(p, r, 1000) // warm: first tick validates every Tlb
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := 1000 + float64(i+1)*20
				r.T = t
				r.WindowStart = t - 200
				for j := range r.Entries {
					r.Entries[j].TS = t - 1
				}
				tick(p, r, sim.Time(t))
			}
			b.StopTimer()
			// After the timed region: ResetTimer deletes user metrics, so
			// the bytes/client figure must land here.
			b.ReportMetric(float64(bytes)/float64(n), "bytes/client")
			if got := p.Count(0).ReportsHeard; got < int64(b.N) {
				b.Fatalf("fan-out did not reach client 0: heard %d of %d", got, b.N)
			}
		})
	}
}

// TestAggregateTickZeroAlloc is the steady-state allocation contract the
// benchmark relies on, enforced in the ordinary test run: after the first
// tick, delivering a broadcast to the whole population performs zero heap
// allocations.
func TestAggregateTickZeroAlloc(t *testing.T) {
	p, _, _ := benchPopulation(2000)
	r := tickReport(1000)
	tick(p, r, 1000)
	tickN := 0
	avg := testing.AllocsPerRun(10, func() {
		tickN++
		now := 1000 + float64(tickN)*20
		r.T = now
		r.WindowStart = now - 200
		for j := range r.Entries {
			r.Entries[j].TS = now - 1
		}
		tick(p, r, sim.Time(now))
	})
	if avg != 0 {
		t.Fatalf("steady-state tick allocates: %v allocs per 2000-client fan-out", avg)
	}
	if p.Count(0).ReportsHeard == 0 {
		t.Fatal("zero-alloc loop delivered nothing")
	}
}
