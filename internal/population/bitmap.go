// Package population implements the aggregate client population: the
// entire cell's mobile hosts as one struct-of-arrays value instead of one
// goroutine-backed process per client. Per-client lifecycle state (gap
// timers, sleep schedules, query cursors, fence/epoch gates, churn and
// offline flags) lives in flat slices, caches are versioned bitmaps over
// the N-item id space, and every suspension point of the process client
// (internal/client) becomes an explicit continuation driven by the same
// kernel events. The package's contract is bit-identity: an aggregate run
// schedules exactly the kernel events the process population schedules,
// in the same order, drawing the same random streams — so Results,
// manifest digests, traces and span folds are byte-identical (pinned by
// the differential suite in internal/engine/aggregate_equiv_test.go).
// What the aggregate buys is scale: no goroutine stacks, no channel
// handoffs, no per-client map allocations — a million clients fit in a
// few hundred bytes each. DESIGN.md §16 states the model.
package population

import "mobicache/internal/cache"

const nilSlot = int32(-1)

// bslot is one cache slot: the entry fields plus the intrusive LRU links.
type bslot struct {
	id         int32
	ver        int32
	ts         float64
	prev, next int32
}

// BitmapCache is the aggregate client's buffer pool: a fixed-capacity LRU
// over the item-id space [0, items), with presence tracked in a bitmap —
// one bit per database item — and entry metadata (timestamp, version, LRU
// links) in a small slot array, in the spirit of the compact
// cache-indicator representations of Cohen–Einziger–Scalosub
// (arXiv:2104.01386). Membership tests are one bit probe; the slot walk
// on a hit is bounded by the capacity, which is small by construction
// (BufferPct · DBSize). Observable behaviour — LRU order, eviction
// choice, hit/miss/eviction/invalidation/drop accounting, Reload panics —
// is identical to internal/cache's map-indexed implementation; the
// differential fuzz suite (FuzzBitmapCache) pins that equivalence. Both
// implement core.Cache, which is how the schemes stay unchanged.
//
// The zero value is unusable; call NewBitmapCache, or Init against
// arena-carved backing slices (how Population packs a million caches into
// three allocations).
type BitmapCache struct {
	capacity int
	items    int32
	bits     []uint64 // presence, one bit per item id
	slots    []bslot
	free     []int32
	head     int32 // most recently used
	tail     int32 // least recently used

	hits, misses  int64
	evictions     int64
	invalidations int64
	drops         int64
}

// BitmapWords reports the presence-bitmap length in uint64 words for an
// item space of the given size — the arena sizing helper.
func BitmapWords(items int) int { return (items + 63) / 64 }

// NewBitmapCache creates a standalone cache holding at most capacity of
// the items item ids (capacity >= 1, items >= 1), allocating its own
// backing storage.
func NewBitmapCache(capacity, items int) *BitmapCache {
	c := &BitmapCache{}
	c.Init(capacity, items,
		make([]uint64, BitmapWords(items)),
		make([]bslot, capacity),
		make([]int32, 0, capacity))
	return c
}

// Init points the cache at externally owned backing storage: bits must
// hold BitmapWords(items) words, slots capacity entries, and free must
// have capacity capacity and length 0. The Population constructor carves
// all three from shared arenas so per-client setup allocates nothing.
func (c *BitmapCache) Init(capacity, items int, bits []uint64, slots []bslot, free []int32) {
	if capacity < 1 {
		panic("population: cache capacity must be at least 1")
	}
	if items < 1 {
		panic("population: item space must be at least 1")
	}
	c.capacity = capacity
	c.items = int32(items)
	c.bits = bits
	c.slots = slots
	c.free = free
	c.resetSlots()
}

// resetSlots empties the slot structure without touching statistics. The
// free stack is rebuilt high-to-low so pops hand out ascending slot
// numbers, mirroring internal/cache.New — slot numbering is unobservable,
// but keeping the layouts aligned makes state dumps comparable.
func (c *BitmapCache) resetSlots() {
	c.free = c.free[:0]
	for i := c.capacity - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
	c.head, c.tail = nilSlot, nilSlot
}

// Cap reports the cache capacity in items.
func (c *BitmapCache) Cap() int { return c.capacity }

// Len reports the number of cached items.
func (c *BitmapCache) Len() int { return c.capacity - len(c.free) }

// Hits and Misses report Lookup outcomes; Evictions counts LRU
// replacements, Invalidations counts Invalidate removals, Drops counts
// DropAll calls.
func (c *BitmapCache) Hits() int64          { return c.hits }
func (c *BitmapCache) Misses() int64        { return c.misses }
func (c *BitmapCache) Evictions() int64     { return c.evictions }
func (c *BitmapCache) Invalidations() int64 { return c.invalidations }
func (c *BitmapCache) Drops() int64         { return c.drops }

// present is the bitmap probe: one load, one mask.
//
//hot — the negative-lookup fast path of every report application and
// query scan; a single bit test, no allocation.
func (c *BitmapCache) present(id int32) bool {
	return c.bits[uint32(id)>>6]&(1<<(uint32(id)&63)) != 0
}

func (c *BitmapCache) setBit(id int32)   { c.bits[uint32(id)>>6] |= 1 << (uint32(id) & 63) }
func (c *BitmapCache) clearBit(id int32) { c.bits[uint32(id)>>6] &^= 1 << (uint32(id) & 63) }

// slotOf finds the slot holding id by walking the recency list. Callers
// probe the bitmap first, so the walk only runs when the id is present;
// it is bounded by the (small) capacity.
//
//hot — bounded linear walk, no allocation.
func (c *BitmapCache) slotOf(id int32) int32 {
	for s := c.head; s != nilSlot; s = c.slots[s].next {
		if c.slots[s].id == id {
			return s
		}
	}
	panic("population: bitmap/slot divergence")
}

//hot — list surgery only.
func (c *BitmapCache) unlink(s int32) {
	e := &c.slots[s]
	if e.prev != nilSlot {
		c.slots[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nilSlot {
		c.slots[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nilSlot, nilSlot
}

//hot — list surgery only.
func (c *BitmapCache) pushFront(s int32) {
	e := &c.slots[s]
	e.prev = nilSlot
	e.next = c.head
	if c.head != nilSlot {
		c.slots[c.head].prev = s
	}
	c.head = s
	if c.tail == nilSlot {
		c.tail = s
	}
}

// entryAt materializes the slot as a cache.Entry value.
func (c *BitmapCache) entryAt(s int32) cache.Entry {
	e := &c.slots[s]
	return cache.Entry{ID: e.id, TS: e.ts, Version: e.ver}
}

// Lookup finds id, promoting it to most recently used on a hit, and
// records the hit or miss.
//
//hot — every queried item passes through here; the Entry return value
// is a small struct handed back on the stack.
func (c *BitmapCache) Lookup(id int32) (cache.Entry, bool) {
	if !c.present(id) {
		c.misses++
		//lint:allow hotalloc the zero Entry is returned by value on the stack
		return cache.Entry{}, false
	}
	c.hits++
	s := c.slotOf(id)
	c.unlink(s)
	c.pushFront(s)
	return c.entryAt(s), true
}

// Peek finds id without promoting it or recording statistics.
//
//hot — report application probes every announced id through here.
func (c *BitmapCache) Peek(id int32) (cache.Entry, bool) {
	if !c.present(id) {
		//lint:allow hotalloc the zero Entry is returned by value on the stack
		return cache.Entry{}, false
	}
	return c.entryAt(c.slotOf(id)), true
}

// Put inserts or refreshes id with the given validity timestamp and
// version, making it most recently used and evicting the LRU entry when
// the cache is full.
//
//hot — every fetched item lands here; eviction reuses the tail slot, so
// steady-state inserts allocate nothing.
func (c *BitmapCache) Put(id int32, ts float64, version int32) {
	if c.present(id) {
		s := c.slotOf(id)
		c.slots[s].ts = ts
		c.slots[s].ver = version
		c.unlink(s)
		c.pushFront(s)
		return
	}
	var s int32
	if len(c.free) > 0 {
		s = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	} else {
		s = c.tail
		c.clearBit(c.slots[s].id)
		c.unlink(s)
		c.evictions++
	}
	//lint:allow hotalloc slot assignment by composite literal writes in place; the backing array is preallocated
	c.slots[s] = bslot{id: id, ts: ts, ver: version, prev: nilSlot, next: nilSlot}
	c.setBit(id)
	c.pushFront(s)
}

// Touch updates the validity timestamp of id if cached, without changing
// recency.
//
//hot — one bit probe plus a bounded walk.
func (c *BitmapCache) Touch(id int32, ts float64) {
	if c.present(id) {
		c.slots[c.slotOf(id)].ts = ts
	}
}

// TouchAll advances the validity timestamp of every entry.
//
//hot — the TS family stamps the whole cache on every confirming report.
func (c *BitmapCache) TouchAll(ts float64) {
	for s := c.head; s != nilSlot; s = c.slots[s].next {
		c.slots[s].ts = ts
	}
}

// Invalidate removes id if cached, reporting whether it was present.
//
//hot — every report entry naming a cached item passes through here; the
// freed slot returns to the stack in place.
func (c *BitmapCache) Invalidate(id int32) bool {
	if !c.present(id) {
		return false
	}
	s := c.slotOf(id)
	c.unlink(s)
	c.clearBit(id)
	//lint:allow hotalloc the free stack was built with the full capacity, so this append never grows it
	c.free = append(c.free, s)
	c.invalidations++
	return true
}

// DropAll empties the cache. The bitmap is cleared entry-by-entry off the
// recency list, so the cost scales with the occupancy, not the item
// space.
func (c *BitmapCache) DropAll() {
	for s := c.head; s != nilSlot; s = c.slots[s].next {
		c.clearBit(c.slots[s].id)
	}
	c.resetSlots()
	c.drops++
}

// Each visits entries from most to least recently used, stopping early if
// fn returns false.
func (c *BitmapCache) Each(fn func(e cache.Entry) bool) {
	for s := c.head; s != nilSlot; s = c.slots[s].next {
		if !fn(c.entryAt(s)) {
			return
		}
	}
}

// Entries appends every cached entry, MRU first, to dst.
func (c *BitmapCache) Entries(dst []cache.Entry) []cache.Entry {
	for s := c.head; s != nilSlot; s = c.slots[s].next {
		dst = append(dst, c.entryAt(s))
	}
	return dst
}

// IDs appends all cached item ids, MRU first, to dst.
func (c *BitmapCache) IDs(dst []int32) []int32 {
	for s := c.head; s != nilSlot; s = c.slots[s].next {
		dst = append(dst, c.slots[s].id)
	}
	return dst
}

// Reload replaces the cache contents with the given entries (MRU first),
// reinstating a decoded snapshot at warm restart, without touching
// statistics. Entries beyond the capacity or with duplicate ids panic,
// exactly like internal/cache.
func (c *BitmapCache) Reload(entries []cache.Entry) {
	if len(entries) > c.capacity {
		panic("population: reload beyond capacity")
	}
	for s := c.head; s != nilSlot; s = c.slots[s].next {
		c.clearBit(c.slots[s].id)
	}
	c.resetSlots()
	// Insert LRU-first so the recency list ends MRU-first, matching the
	// order the snapshot recorded.
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if c.present(e.ID) {
			panic("population: duplicate id in reload")
		}
		s := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.slots[s] = bslot{id: e.ID, ts: e.TS, ver: e.Version, prev: nilSlot, next: nilSlot}
		c.setBit(e.ID)
		c.pushFront(s)
	}
}

// ResetStats zeroes the hit/miss/eviction counters (measurement warmup);
// cache contents are untouched.
func (c *BitmapCache) ResetStats() {
	c.hits, c.misses, c.evictions, c.invalidations, c.drops = 0, 0, 0, 0, 0
}

// HitRatio reports hits / (hits + misses), or 0 before any lookup.
func (c *BitmapCache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
