// Benchmarks regenerating the paper's evaluation, one per figure, plus
// micro-benchmarks of the substrates. Each figure benchmark runs the
// figure's sweep family at a representative point for all four evaluated
// schemes and reports the headline metric per scheme as a custom unit, so
// `go test -bench=Fig` prints the same quantities the paper plots (at a
// reduced horizon; use cmd/experiments for the full-horizon sweeps).
package mobicache

import (
	"fmt"
	"testing"

	"mobicache/internal/bitio"
	"mobicache/internal/bitseq"
	"mobicache/internal/cache"
	"mobicache/internal/db"
	"mobicache/internal/delivery"
	"mobicache/internal/engine"
	"mobicache/internal/exp"
	"mobicache/internal/netsim"
	"mobicache/internal/report"
	"mobicache/internal/rng"
	"mobicache/internal/sim"
)

// benchHorizon keeps per-iteration cost reasonable; shapes (who wins, by
// what factor) already show at this length.
const benchHorizon = 5000

// benchFigure runs one sweep point of a figure for every evaluated scheme
// and reports the figure's metric per scheme.
func benchFigure(b *testing.B, figID string, x float64) {
	b.Helper()
	fig, err := exp.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	totals := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		for _, scheme := range exp.EvaluatedSchemes {
			c := fig.Sweep.Configure(x)
			c.Scheme = scheme
			c.SimTime = benchHorizon
			c.Seed = uint64(i + 1)
			r, err := engine.Run(c)
			if err != nil {
				b.Fatal(err)
			}
			switch fig.Metric {
			case exp.Throughput:
				totals[scheme] += float64(r.QueriesAnswered)
			case exp.UplinkPerQuery:
				totals[scheme] += r.UplinkBitsPerQuery
			}
		}
	}
	unit := "queries"
	if fig.Metric == exp.UplinkPerQuery {
		unit = "bits/query"
	}
	for _, scheme := range exp.EvaluatedSchemes {
		b.ReportMetric(totals[scheme]/float64(b.N), scheme+"_"+unit)
	}
}

// Figures 5/6: UNIFORM versus database size. The representative point is
// 40000 items, where the BS report already eats 40% of the downlink.
func BenchmarkFig05ThroughputVsDBSize(b *testing.B) { benchFigure(b, "fig5", 40000) }
func BenchmarkFig06UplinkVsDBSize(b *testing.B)     { benchFigure(b, "fig6", 40000) }

// Figures 7/8: UNIFORM versus disconnection probability (p = 0.4).
func BenchmarkFig07ThroughputVsProbDisc(b *testing.B) { benchFigure(b, "fig7", 0.4) }
func BenchmarkFig08UplinkVsProbDisc(b *testing.B)     { benchFigure(b, "fig8", 0.4) }

// Figures 9/10: UNIFORM versus mean disconnection time (1000 s).
func BenchmarkFig09ThroughputVsDiscTime(b *testing.B) { benchFigure(b, "fig9", 1000) }
func BenchmarkFig10UplinkVsDiscTime(b *testing.B)     { benchFigure(b, "fig10", 1000) }

// Figures 11/12: HOTCOLD versus database size (10000 items).
func BenchmarkFig11ThroughputVsDBSizeHotCold(b *testing.B) { benchFigure(b, "fig11", 10000) }
func BenchmarkFig12UplinkVsDBSizeHotCold(b *testing.B)     { benchFigure(b, "fig12", 10000) }

// Figures 13/14: HOTCOLD versus disconnection probability (p = 0.4).
func BenchmarkFig13ThroughputVsProbDiscHotCold(b *testing.B) { benchFigure(b, "fig13", 0.4) }
func BenchmarkFig14UplinkVsProbDiscHotCold(b *testing.B)     { benchFigure(b, "fig14", 0.4) }

// Figures 15/16: asymmetric channels at a 200 bit/s uplink — the
// crossover region where checking starts to lose to the adaptives.
func BenchmarkFig15AsymmetricUniform(b *testing.B) { benchFigure(b, "fig15", 200) }
func BenchmarkFig16AsymmetricHotCold(b *testing.B) { benchFigure(b, "fig16", 200) }

// Table 1's base configuration, one bench per scheme: the headline
// single-run cost of the whole simulator.
func BenchmarkBaseConfig(b *testing.B) {
	for _, scheme := range []string{"ts", "ts-check", "at", "bs", "afw", "aaw"} {
		b.Run(scheme, func(b *testing.B) {
			queries := int64(0)
			for i := 0; i < b.N; i++ {
				c := engine.Default()
				c.Scheme = scheme
				c.SimTime = benchHorizon
				c.Seed = uint64(i + 1)
				r, err := engine.Run(c)
				if err != nil {
					b.Fatal(err)
				}
				queries += r.QueriesAnswered
			}
			b.ReportMetric(float64(queries)/float64(b.N), "queries")
		})
	}
}

// BenchmarkSweepParallel measures the experiment harness end to end at
// 1, 2 and 4 workers over a fixed 16-cell sweep (2 points x 4 schemes x
// 2 seeds). The cells are independent simulations, so on a multi-core
// machine the 4-worker variant should run at least ~2x faster than
// serial; on a single core all three converge. The ns/op ratios prove
// the scaling — the determinism tests in internal/exp prove the results
// are bit-identical regardless.
func BenchmarkSweepParallel(b *testing.B) {
	sweep := func() *exp.Sweep {
		return &exp.Sweep{
			ID: "bench-par", XLabel: "Mean Disconnection Time (s)",
			Xs: []float64{400, 1200},
			Configure: func(x float64) engine.Config {
				c := engine.Default()
				c.ProbDisc = 0.1
				c.MeanDisc = x
				c.BufferPct = 0.01
				return c
			},
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh Runner per iteration: RunSweep memoizes, and a
				// cached result would benchmark a map lookup.
				r := exp.NewRunner(exp.Options{SimTime: 2000, Seeds: []uint64{1, 2}, Workers: workers})
				if _, err := r.RunSweep(sweep()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate micro-benchmarks -----------------------------------------

func makeUpdatedDB(n, updates int) *db.Database {
	d := db.New(n, false)
	src := rng.New(11)
	now := 0.0
	for i := 0; i < updates; i++ {
		now += src.Exp(1)
		d.Update(int32(src.Intn(n)), now)
	}
	return d
}

func BenchmarkBitseqBuild(b *testing.B) {
	for _, n := range []int{1000, 10000, 80000} {
		d := makeUpdatedDB(n, n/4)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bitseq.Build(n, d)
			}
		})
	}
}

func BenchmarkBitseqLocate(b *testing.B) {
	const n = 10000
	d := makeUpdatedDB(n, n/4)
	st := bitseq.Build(n, d)
	var ids []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ids = st.Locate(float64(i%1000), ids[:0])
	}
}

func BenchmarkBitseqEncode(b *testing.B) {
	const n = 10000
	st := bitseq.Build(n, makeUpdatedDB(n, n/4))
	w := bitio.NewWriter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		st.Encode(w)
	}
}

func BenchmarkReportEncodeTS(b *testing.B) {
	p := report.DefaultParams(10000)
	entries := make([]db.UpdateEntry, 50)
	for i := range entries {
		entries[i] = db.UpdateEntry{ID: int32(i), TS: float64(i)}
	}
	r := &report.TSReport{T: 1000, Entries: entries}
	w := bitio.NewWriter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		report.Encode(r, p, w)
	}
}

func BenchmarkCacheLookupPut(b *testing.B) {
	c := cache.New(200)
	src := rng.New(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int32(src.Intn(10000))
		if _, ok := c.Lookup(id); !ok {
			c.Put(id, float64(i), 1)
		}
	}
}

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := sim.New()
	var tick func()
	count := 0
	tick = func() {
		count++
		if count < b.N {
			k.Schedule(1, tick)
		}
	}
	k.Schedule(1, tick)
	b.ReportAllocs() // event freelist: steady-state rescheduling is 0 allocs/op
	b.ResetTimer()
	k.Run(sim.EndOfTime)
}

// BenchmarkKernelScheduleCancel churns the schedule/cancel pair that the
// client's per-query deadline timer exercises on every answered query.
// The event freelist must make the steady state allocation-free: each
// Cancel returns the event for the next Schedule to reuse.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Cancel(k.Schedule(1, fn))
	}
	if testing.AllocsPerRun(100, func() {
		k.Cancel(k.Schedule(1, fn))
	}) != 0 {
		b.Fatal("schedule/cancel churn allocates despite the freelist")
	}
}

func BenchmarkKernelProcSwitch(b *testing.B) {
	k := sim.New()
	defer k.Shutdown()
	k.Go("switcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(1)
		}
	})
	b.ReportAllocs() // cached wake closure: Hold allocates no per-call func
	b.ResetTimer()
	k.Run(sim.EndOfTime)
}

func BenchmarkChannelSaturated(b *testing.B) {
	k := sim.New()
	ch := netsim.NewChannel(k, "down", 1e6)
	remaining := b.N
	var send func()
	send = func() {
		if remaining > 0 {
			remaining--
			ch.Send(netsim.ClassData, 100, send)
		}
	}
	send()
	b.ResetTimer()
	k.Run(sim.EndOfTime)
}

// BenchmarkChannelBoundedShed measures the tail-drop fast path: one
// message in service and the queue pinned at its cap, so every Send is
// rejected at admission. The overload contract requires this path to be
// allocation-free and to schedule nothing — shedding under saturation
// must not itself cost memory or kernel work.
func BenchmarkChannelBoundedShed(b *testing.B) {
	k := sim.New()
	ch := netsim.NewChannel(k, "up", 1e6)
	ch.SetQueueCap(4)
	for i := 0; i < 5; i++ { // one in service + four queued = cap reached
		if !ch.Send(netsim.ClassControl, 100, nil) {
			b.Fatal("prefill shed before the cap was reached")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ch.Send(netsim.ClassControl, 100, nil) {
			b.Fatal("send admitted past a full queue")
		}
	}
	if testing.AllocsPerRun(100, func() {
		ch.Send(netsim.ClassControl, 100, nil)
	}) != 0 {
		b.Fatal("shed path allocates")
	}
}

// BenchmarkDeliveryLinkDeliver measures the armed delivery hook: every
// simulated message on an adversarial channel runs through Link.Deliver,
// so the contract requires it to be allocation-free — jitter draws are
// pure arithmetic and the postponed callback rides the kernel's event
// freelist. Each iteration delivers one message and drains its event.
func BenchmarkDeliveryLinkDeliver(b *testing.B) {
	k := sim.New()
	adv := delivery.New(k, delivery.Config{
		Down: delivery.LinkParams{Jitter: 0.5, ReorderProb: 0.1, ReorderDelay: 25, DupProb: 0.05},
	}, rng.New(9), nil)
	l := adv.Down
	cb := func() {}
	for i := 0; i < 64; i++ { // warm the event freelist
		l.Deliver(cb)
	}
	for k.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Deliver(cb)
		k.Step()
	}
	b.StopTimer()
	if testing.AllocsPerRun(100, func() {
		l.Deliver(cb)
		k.Step()
	}) != 0 {
		b.Fatal("armed delivery hook allocates")
	}
}
